// Copyright 2026 The obtree Authors.
//
// Result carrier of the batched operation API (ConcurrentMap::MultiGet /
// MultiInsert / MultiErase / MultiUpsert and the ShardedMap
// counterparts). One BatchResult describes one batch: a per-op outcome
// in submission order, plus the batch-level slice of the pipelined
// descent engine's counters (how many page fetches were coalesced, how
// many simulated-I/O waits were overlapped). See SagivTree's batched
// operations for the engine itself and ARCHITECTURE.md "Batched
// operation engine" for the cost-model accounting.

#ifndef OBTREE_API_BATCH_H_
#define OBTREE_API_BATCH_H_

#include <cstddef>
#include <vector>

#include "obtree/util/common.h"
#include "obtree/util/stats.h"
#include "obtree/util/status.h"

namespace obtree {

/// Outcome of one batched call. Exactly one of the two per-op vectors is
/// populated, matching the call's shape:
///   * MultiGet fills `values` (a Result<Value> per key: the value,
///     NotFound, or the op's error);
///   * MultiInsert/MultiErase/MultiUpsert fill `statuses` (a Status per
///     key with the single-op call's semantics).
/// Ops are independent: one failing (e.g. an injected Unavailable) does
/// not disturb its batch-mates — inspect per-op slots, not just ok().
struct BatchResult {
  std::vector<Result<Value>> values;  ///< per-op results (MultiGet)
  std::vector<Status> statuses;       ///< per-op statuses (write batches)
  BatchStats stats;                   ///< this batch's kBatch* slice

  /// Number of ops in the batch.
  size_t size() const {
    return values.empty() ? statuses.size() : values.size();
  }

  /// True when every op succeeded (NotFound counts as failure for gets
  /// and erases only in the sense of its Status; here "ok" is Status::ok).
  bool all_ok() const {
    for (const auto& v : values) {
      if (!v.ok()) return false;
    }
    for (const Status& s : statuses) {
      if (!s.ok()) return false;
    }
    return true;
  }
};

}  // namespace obtree

#endif  // OBTREE_API_BATCH_H_
