// Copyright 2026 The obtree Authors.
//
// ShardedMap: a key-range-partitioned front-end over N independent
// SagivTree shards. A single tree serializes contending updaters on hot
// nodes and funnels every descent through one root; sharding splits the
// key space into contiguous ranges, each served by its own tree with its
// own locks, page manager, and compression deployment, so disjoint-range
// operations never touch shared mutable state.
//
//   [1, W] [W+1, 2W] ... [(N-1)W+1, +inf)        W = key_space_hint / N
//      |        |               |
//   shard 0  shard 1  ...    shard N-1           (each a ConcurrentMap:
//                                                 SagivTree + compressors)
//
// Point operations route to exactly one shard. Range scans visit only the
// shards whose ranges intersect [lo, hi], in shard order; because the
// partition is ordered, concatenating per-shard results yields globally
// ascending keys without a heap merge. Stats and TreeShape aggregate
// across shards.
//
//   obtree::ShardOptions options;
//   options.num_shards = 8;
//   options.key_space_hint = 10'000'000;   // expected key range
//   obtree::ShardedMap map(options);
//   map.Insert(42, handle);

#ifndef OBTREE_API_SHARDED_MAP_H_
#define OBTREE_API_SHARDED_MAP_H_

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "obtree/api/concurrent_map.h"
#include "obtree/core/options.h"
#include "obtree/util/common.h"
#include "obtree/util/stats.h"
#include "obtree/util/status.h"

namespace obtree {

class BackgroundPool;
struct TreeShape;

/// Thread-safe ordered map, partitioned across independent tree shards.
class ShardedMap {
 public:
  explicit ShardedMap(const ShardOptions& options = ShardOptions());
  ~ShardedMap();
  OBTREE_DISALLOW_COPY_AND_ASSIGN(ShardedMap);

  /// Construction status (InvalidArgument if options were rejected; the
  /// map then degrades to the default ShardOptions topology).
  const Status& init_status() const { return init_status_; }

  /// Insert a new key. AlreadyExists if present.
  Status Insert(Key key, Value value);

  /// Point lookup. Lock-free within the owning shard.
  Result<Value> Get(Key key) const;

  /// Remove a key. NotFound if absent.
  Status Erase(Key key);

  /// Insert-or-replace (per-shard; same atomicity caveats as
  /// ConcurrentMap::Upsert).
  Status Upsert(Key key, Value value);

  /// Tree-style aliases for the duck-typed workload driver.
  Result<Value> Search(Key key) const { return Get(key); }
  Status Delete(Key key) { return Erase(key); }

  /// Visit pairs with lo <= key <= hi in globally ascending order,
  /// traversing only the shards whose ranges intersect [lo, hi]. The
  /// visitor returns false to stop. Returns pairs visited.
  size_t Scan(Key lo, Key hi,
              const std::function<bool(Key, Value)>& visitor) const;

  /// Collect up to `limit` pairs starting at `from` (pagination helper).
  std::vector<std::pair<Key, Value>> ScanLimit(Key from, size_t limit) const;

  /// Total keys across shards.
  uint64_t Size() const;
  /// True when every shard is empty.
  bool Empty() const { return Size() == 0; }

  /// Tallest shard height (levels).
  uint32_t Height() const;

  /// Run every shard's compression to a fixpoint (blocks the caller).
  void CompressNow();

  /// Operation counters summed across shards; max_locks_held is the max.
  StatsSnapshot Stats() const;

  /// Counters of the shared background-maintenance pool: tasks drained
  /// per shard, boost/steal counts, idle ratio. Empty (threads == 0) in
  /// per-shard-workers mode or with compression off.
  PoolStatsSnapshot PoolStats() const;

  /// Structural statistics aggregated across shards: heights max,
  /// node/key counts sum, per-level node counts sum element-wise,
  /// avg_leaf_fill weighted by each shard's leaf count.
  TreeShape Shape() const;

  /// Full structural validation of every shard (quiescent only). Returns
  /// the first shard failure, annotated with the shard index.
  Status ValidateStructure() const;

  // --- sharding introspection (tests, benches, rebalancing tools) --------

  /// Number of key-range partitions this map serves.
  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }

  /// The shard whose range contains `key`.
  uint32_t ShardIndex(Key key) const {
    const uint64_t idx = (key - 1) / shard_width_;
    const uint64_t last = shards_.size() - 1;
    return static_cast<uint32_t>(idx < last ? idx : last);
  }

  /// Smallest key routed to `shard` (its range is
  /// [ShardLowerBound(s), ShardLowerBound(s+1) - 1], unbounded above for
  /// the last shard).
  Key ShardLowerBound(uint32_t shard) const {
    return static_cast<Key>(shard) * shard_width_ + 1;
  }

  /// Direct access to one shard's map / tree (benchmarks, validation).
  ConcurrentMap* shard(uint32_t i) { return shards_[i].get(); }
  const ConcurrentMap* shard(uint32_t i) const { return shards_[i].get(); }

  /// The shared maintenance pool, or nullptr in per-shard-workers mode /
  /// with compression off.
  BackgroundPool* pool() const { return pool_.get(); }

  /// Total background maintenance threads serving this map: the pool's
  /// fixed size in shared-pool mode (independent of num_shards), or the
  /// sum of per-shard workers in fallback mode (grows with num_shards).
  int background_thread_count() const;

  const ShardOptions& options() const { return options_; }

 private:
  ShardOptions options_;
  Status init_status_;
  uint64_t shard_width_;  ///< keys per shard range (ceil division)
  /// Declared before shards_ so it is destroyed after them: each shard's
  /// destructor detaches itself from the (still-live) pool.
  std::unique_ptr<BackgroundPool> pool_;
  std::vector<std::unique_ptr<ConcurrentMap>> shards_;
};

}  // namespace obtree

#endif  // OBTREE_API_SHARDED_MAP_H_
