// Copyright 2026 The obtree Authors.
//
// ShardedMap: a key-range-partitioned front-end over N independent
// SagivTree shards. A single tree serializes contending updaters on hot
// nodes and funnels every descent through one root; sharding splits the
// key space into contiguous ranges, each served by its own tree with its
// own locks, page manager, and compression deployment, so disjoint-range
// operations never touch shared mutable state.
//
//   [1, W] [W+1, 2W] ... [(N-1)W+1, +inf)        W = key_space_hint / N
//      |        |               |
//   shard 0  shard 1  ...    shard N-1           (each a ConcurrentMap:
//                                                 SagivTree + compressors)
//
// Point operations route to exactly one shard. Range scans visit only the
// shards whose ranges intersect [lo, hi], in shard order; because the
// partition is ordered, concatenating per-shard results yields globally
// ascending keys without a heap merge. Stats and TreeShape aggregate
// across shards.
//
// With options.rebalance.enabled the partition becomes DYNAMIC: a
// ShardRebalancer thread watches per-shard load (op counters, paper-lock
// contention, BackgroundPool drain/boost rates), splits hot shards and
// merges cold neighbors by migrating boundary key ranges under live
// traffic. Routing then goes through an atomically swappable boundary
// table; during a migration, operations on the moving range run a
// donor-first double lookup so every interleaving stays correct. The full
// protocol, its invariants, and the operator playbook are in
// docs/REBALANCING.md.
//
//   obtree::ShardOptions options;
//   options.num_shards = 8;
//   options.key_space_hint = 10'000'000;   // expected key range
//   obtree::ShardedMap map(options);
//   map.Insert(42, handle);

#ifndef OBTREE_API_SHARDED_MAP_H_
#define OBTREE_API_SHARDED_MAP_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "obtree/api/concurrent_map.h"
#include "obtree/core/options.h"
#include "obtree/core/shard_rebalancer.h"
#include "obtree/util/common.h"
#include "obtree/util/epoch.h"
#include "obtree/util/stats.h"
#include "obtree/util/status.h"

namespace obtree {

class BackgroundPool;
struct TreeShape;

/// Thread-safe ordered map, partitioned across independent tree shards.
class ShardedMap : private ShardRebalancer::Host {
 public:
  explicit ShardedMap(const ShardOptions& options = ShardOptions());
  ~ShardedMap() override;
  OBTREE_DISALLOW_COPY_AND_ASSIGN(ShardedMap);

  /// Construction status (InvalidArgument if options were rejected; the
  /// map then degrades to the default ShardOptions topology).
  const Status& init_status() const { return init_status_; }

  /// Insert a new key. AlreadyExists if present.
  Status Insert(Key key, Value value);

  /// Point lookup. Lock-free within the owning shard.
  Result<Value> Get(Key key) const;

  /// Remove a key. NotFound if absent.
  Status Erase(Key key);

  /// Insert-or-replace, atomic within the owning shard (the shard runs
  /// ConcurrentMap::Upsert — one descent, presence check and overwrite in
  /// the same locked critical section). Keys inside a migration's
  /// unsettled zone fall back to a dual-zone erase+insert that is NOT
  /// atomic (a reader may briefly observe the key absent); the fallback
  /// is bounded to the migration window.
  Status Upsert(Key key, Value value);

  /// Tree-style aliases: Search IS Get and Delete IS Erase, with
  /// identical semantics and costs. They exist for the duck-typed
  /// workload driver and SagivTree-vocabulary callers; new code should
  /// prefer Get/Erase.
  Result<Value> Search(Key key) const { return Get(key); }
  Status Delete(Key key) { return Erase(key); }

  // --- batched operations ---------------------------------------------------
  //
  // Each Multi* call routes its ops once, groups them per target shard,
  // and submits each group as one sub-batch to that shard's pipelined
  // descent engine (ConcurrentMap::Multi*), merging the per-group
  // BatchStats. In dynamic mode the whole batch runs under ONE routing
  // epoch guard, so a concurrent table swap waits for the entire batch.
  // Ops on keys in a migration's unsettled zone bypass the engine and run
  // the single-op dual-lookup protocol (they still count in
  // BatchResult::stats.ops, but coalesce nothing). Per-op semantics are
  // identical to the single-op calls.

  /// Batched Get: result.values[i] corresponds to keys[i].
  BatchResult MultiGet(const std::vector<Key>& keys) const;

  /// Batched Insert: result.statuses[i] as Insert(keys[i], values[i]).
  /// keys and values must be the same length (else every status is
  /// InvalidArgument).
  BatchResult MultiInsert(const std::vector<Key>& keys,
                          const std::vector<Value>& values);

  /// Batched Erase: result.statuses[i] as Erase(keys[i]).
  BatchResult MultiErase(const std::vector<Key>& keys);

  /// Batched Upsert: result.statuses[i] as Upsert(keys[i], values[i]).
  /// Same length requirement as MultiInsert.
  BatchResult MultiUpsert(const std::vector<Key>& keys,
                          const std::vector<Value>& values);

  /// Visit pairs with lo <= key <= hi in globally ascending order,
  /// traversing only the shards whose ranges intersect [lo, hi]. The
  /// visitor returns false to stop. Returns pairs visited. During a
  /// migration the moving range is served by a chunked two-way merge of
  /// donor and receiver (see docs/REBALANCING.md for the consistency
  /// contract of scans that overlap an in-flight batch).
  size_t Scan(Key lo, Key hi,
              const std::function<bool(Key, Value)>& visitor) const;

  /// Collect up to `limit` pairs starting at `from` (pagination helper).
  std::vector<std::pair<Key, Value>> ScanLimit(Key from, size_t limit) const;

  /// Total keys across shards.
  uint64_t Size() const;
  /// True when every shard is empty.
  bool Empty() const { return Size() == 0; }

  /// Tallest shard height (levels).
  uint32_t Height() const;

  /// Run every shard's compression to a fixpoint (blocks the caller).
  void CompressNow();

  // --- persistence (options.tree.storage_dir) -----------------------------
  //
  // With a storage_dir, shard i persists into <storage_dir>/shard-<i>.
  // Persistence requires a STATIC topology: ShardOptions::Validate
  // rejects rebalance.enabled combined with storage_dir (there is no
  // cross-shard checkpoint barrier, so a migration concurrent with a
  // checkpoint could be captured on neither side).

  /// Checkpoint every shard in turn (ConcurrentMap::Checkpoint per
  /// shard). Returns the first failure. Each shard's checkpoint is
  /// individually atomic; the map-level guarantee is per-key — every
  /// operation that returned before this call started is captured.
  Status Checkpoint();

  /// True when any shard recovered from a committed checkpoint.
  bool recovered_from_checkpoint() const;

  /// Operation counters summed across shards; max_locks_held is the max.
  /// Sums over every tree the map has EVER created — including donors
  /// retired by a merge — so all counters stay monotone across
  /// rebalancing actions.
  StatsSnapshot Stats() const;

  /// Counters of the shared background-maintenance pool: tasks drained
  /// per shard, boost/steal counts, idle ratio. Empty (threads == 0) in
  /// per-shard-workers mode or with compression off.
  PoolStatsSnapshot PoolStats() const;

  /// Structural statistics aggregated across shards: heights max,
  /// node/key counts sum, per-level node counts sum element-wise,
  /// avg_leaf_fill weighted by each shard's leaf count.
  TreeShape Shape() const;

  /// Full structural validation of every shard (quiescent only). Returns
  /// the first shard failure, annotated with the shard index.
  Status ValidateStructure() const;

  // --- sharding introspection (tests, benches, rebalancing tools) --------

  /// Number of key-range partitions this map serves. Fixed at
  /// options.num_shards unless rebalancing is enabled, in which case it
  /// moves within [rebalance.min_shards, rebalance.max_shards].
  uint32_t num_shards() const {
    return static_cast<uint32_t>(table()->entries.size());
  }

  /// The shard whose range contains `key` (index into the CURRENT
  /// partition; stale the moment a rebalance swaps the table).
  uint32_t ShardIndex(Key key) const;

  /// Smallest key routed to `shard` (its range is
  /// [ShardLowerBound(s), ShardLowerBound(s+1) - 1], unbounded above for
  /// the last shard).
  Key ShardLowerBound(uint32_t shard) const {
    return table()->entries[shard].lo;
  }

  /// Direct access to one shard's map / tree (benchmarks, validation).
  ConcurrentMap* shard(uint32_t i) { return table()->entries[i].tree; }
  const ConcurrentMap* shard(uint32_t i) const {
    return table()->entries[i].tree;
  }

  /// The shared maintenance pool, or nullptr in per-shard-workers mode /
  /// with compression off.
  BackgroundPool* pool() const { return pool_.get(); }

  /// The rebalancing controller, or nullptr unless
  /// options.rebalance.enabled (tests drive TickForTest through this).
  ShardRebalancer* rebalancer() const { return rebalancer_.get(); }

  /// The most recent migration failure (OK if none yet). Set when a
  /// migration aborts after exhausting its batch retries or deadline and
  /// rolls back; operators poll this next to Stats()'s
  /// migration_aborts / rebalance_breaker_trips counters.
  Status LastRebalanceError() const {
    std::lock_guard<std::mutex> lk(last_error_mu_);
    return last_rebalance_error_;
  }

  /// Total background maintenance threads serving this map: the pool's
  /// fixed size in shared-pool mode (independent of num_shards), or the
  /// sum of per-shard workers in fallback mode (grows with num_shards).
  int background_thread_count() const;

  const ShardOptions& options() const { return options_; }

  // --- test hooks ---------------------------------------------------------

  /// Called from the migration thread at named points ("table-swap",
  /// "batch-begin", "key-moved", "batch-end") with the key involved.
  /// Tests use it to freeze a migration mid-window and race operations
  /// against it. Must be installed BEFORE any migration starts and may
  /// block; never called when unset. Not for production use.
  using MigrationHook = std::function<void(const char* point, Key key)>;
  void SetMigrationHookForTest(MigrationHook hook);

  /// Force one split/merge synchronously, bypassing the controller policy
  /// (but not the mechanism: same migration protocol, same table swap).
  /// Requires rebalancing to be enabled; returns false when the action is
  /// structurally impossible or the migration aborted. Tests only.
  bool DebugSplitShard(uint32_t index) {
    return SplitShard(index) == ShardRebalancer::ActionResult::kOk;
  }
  bool DebugMergeShards(uint32_t left) {
    return MergeShards(left) == ShardRebalancer::ActionResult::kOk;
  }

 private:
  /// One in-flight (or completed) key-range migration. Readers hold raw
  /// pointers to these from routing-table snapshots, so migrations are
  /// never freed before the map itself (migrations_ graveyard).
  ///
  /// State, in publication order (see docs/REBALANCING.md §3):
  ///   keys in [lo, drained_below)          moved; receiver authoritative
  ///   keys in [batch_lo, batch_hi], seq odd  in flight; wait out the batch
  ///   remaining keys in [lo, hi]           still in the donor
  struct ShardMigration {
    Key lo = 0;                         ///< migrating range, inclusive
    Key hi = 0;
    ConcurrentMap* donor = nullptr;     ///< keys drain OUT of this tree
    ConcurrentMap* receiver = nullptr;  ///< ... INTO this tree
    /// Keys below this are fully migrated (monotone; starts at lo).
    std::atomic<Key> drained_below{0};
    /// Seqlock over the in-flight batch: odd while the migrator is
    /// between "removed from donor" and "batch fully inserted into
    /// receiver" for the keys in [batch_lo, batch_hi].
    std::atomic<uint64_t> batch_seq{0};
    std::atomic<Key> batch_lo{0};
    std::atomic<Key> batch_hi{0};
    /// Set once the whole range has drained; the entry's tree (the
    /// receiver) is then authoritative for every key.
    std::atomic<bool> done{false};
    /// Keys actually moved donor -> receiver (rollback accounting).
    std::atomic<uint64_t> keys_moved{0};
  };

  /// One row of the routing table: keys in [lo, next row's lo) are served
  /// by `tree`. While `mig` is set (and not done), `tree` is the
  /// migration's receiver and operations run the donor-first double
  /// lookup instead of a plain single-tree call.
  struct RouteEntry {
    Key lo = 1;
    ConcurrentMap* tree = nullptr;
    ShardMigration* mig = nullptr;
  };

  /// Immutable once published. Swapped atomically; superseded tables are
  /// retired to tables_ and freed only at map destruction, so a reader
  /// may dereference a stale snapshot indefinitely.
  struct RoutingTable {
    std::vector<RouteEntry> entries;  ///< sorted by lo; entries[0].lo == 1
  };

  using ActionResult = ShardRebalancer::ActionResult;

  // ShardRebalancer::Host (controller thread; serialized by admin_mu_).
  std::vector<ShardLoad> SnapshotLoads() override;
  ActionResult SplitShard(size_t index) override;
  ActionResult MergeShards(size_t left) override;

  const RoutingTable* table() const {
    return table_.load(std::memory_order_acquire);
  }

  /// Last entry with entry.lo <= key (always exists: entries[0].lo == 1).
  static const RouteEntry& Route(const RoutingTable* t, Key key);
  static size_t RouteIndex(const RoutingTable* t, Key key);

  /// Division-based routing for the static (rebalancing-off) topology —
  /// the table is equal-width there, so the quotient IS the index.
  const RouteEntry& StaticRoute(const RoutingTable* t, Key key) const {
    const uint64_t idx = (key - 1) / shard_width_;
    const uint64_t last = t->entries.size() - 1;
    return t->entries[idx < last ? idx : last];
  }

  /// Scan body over one table snapshot (caller holds the epoch guard in
  /// dynamic mode).
  size_t ScanTable(const RoutingTable* t, Key lo, Key hi,
                   const std::function<bool(Key, Value)>& visitor) const;

  /// True when `key` no longer needs the double lookup: no migration, the
  /// migration finished, or the key's prefix has fully drained.
  static bool Settled(const ShardMigration* mig, Key key);

  /// Spin-yield while an in-flight migration batch covers `key` (counted
  /// as StatId::kMigrationRetries on the donor when it actually waited).
  static void WaitOutBatch(const ShardMigration* mig, Key key);

  // Double-lookup protocols for keys in a migration's unsettled zone
  // (correctness argument per interleaving: docs/REBALANCING.md §4).
  Result<Value> DualGet(const RouteEntry& e, Key key) const;
  Status DualInsert(const RouteEntry& e, Key key, Value value);
  Status DualErase(const RouteEntry& e, Key key);
  Status DualUpsert(const RouteEntry& e, Key key, Value value);

  /// One per-shard slice of a batched call: the ops of a batch that
  /// routed to the same tree, submitted together as one sub-batch.
  struct BatchGroup {
    ConcurrentMap* tree = nullptr;
    std::vector<size_t> idx;    ///< original positions in the batch
    std::vector<Key> keys;
    std::vector<Value> values;  ///< parallel to keys (write batches only)
  };

  /// Split a batch by routed tree. Settled keys append to their tree's
  /// group; keys in a migration's unsettled zone are returned separately
  /// with their route so the caller can run the dual-lookup protocol.
  /// `values` may be null (read batches). Caller holds the table-epoch
  /// guard in dynamic mode.
  void GroupBatch(const RoutingTable* t, const Key* keys, const Value* values,
                  size_t n, std::vector<BatchGroup>* groups,
                  std::vector<std::pair<size_t, RouteEntry>>* unsettled) const;

  /// Chunked ascending merge of donor + receiver over [lo, hi] for scans
  /// crossing a live migration. Returns false if the visitor stopped.
  bool ScanMergedRange(const ShardMigration* mig, Key lo, Key hi,
                       const std::function<bool(Key, Value)>& visitor,
                       size_t* visited) const;

  /// Publish a new routing table (admin_mu_ held). With wait_grace, block
  /// until every operation that may have routed through a previous table
  /// has finished — after it returns, all traffic sees the new topology.
  void PublishTable(std::unique_ptr<RoutingTable> next, bool wait_grace);

  /// Drain mig's range donor -> receiver in batches (admin_mu_ held).
  /// Self-healing: each batch has a bounded retry budget with backoff,
  /// the whole migration a wall-clock deadline. Returns false if it
  /// aborted instead of draining — the caller must then roll back
  /// (docs/REBALANCING.md §10). On abort, `drained_below` is never past a
  /// key that failed to move, so invariant I1 still holds.
  bool RunMigration(ShardMigration* mig);

  /// Land an in-hand key (already removed from the donor, batch window
  /// open): receiver first, exempt from fault injection after a few
  /// honored attempts, donor as the last resort. Returns true if it
  /// landed in the receiver, false if it fell back into the donor.
  static bool LandKey(ShardMigration* mig, Key key, Value value);

  /// Allocate the reversed migration used by an abort rollback: keys
  /// drain back out of `aborted`'s receiver into its donor over the full
  /// original range (admin_mu_ held).
  ShardMigration* MakeRollback(const ShardMigration* aborted);

  void SetLastRebalanceError(Status s) {
    std::lock_guard<std::mutex> lk(last_error_mu_);
    last_rebalance_error_ = std::move(s);
  }

  /// Build a ConcurrentMap with this map's per-shard options.
  std::unique_ptr<ConcurrentMap> MakeTree();

  /// Distinct live trees: every routing-table tree plus the donors of
  /// unfinished migrations (table snapshot passed in by the caller).
  std::vector<ConcurrentMap*> LiveTrees(const RoutingTable* t) const;

  void FireHook(const char* point, Key key);

  ShardOptions options_;
  Status init_status_;
  uint64_t shard_width_;  ///< keys per initial shard range (ceil division)
  bool dynamic_ = false;  ///< options_.rebalance.enabled and valid
  /// Declared before the tree graveyard so it is destroyed after them:
  /// each tree's destructor detaches itself from the (still-live) pool.
  std::unique_ptr<BackgroundPool> pool_;
  /// Every tree ever created, live or retired (merge donors). Guarded by
  /// trees_mu_ for mutation + whole-vector reads; elements are never
  /// removed before destruction.
  mutable std::mutex trees_mu_;
  std::vector<std::unique_ptr<ConcurrentMap>> trees_;
  /// Every routing table ever published (the current one is tables_.back()
  /// at rest) and every migration ever run. Readers hold raw pointers
  /// into these from table snapshots; freed only on destruction.
  std::vector<std::unique_ptr<RoutingTable>> tables_;
  std::vector<std::unique_ptr<ShardMigration>> migrations_;
  std::atomic<RoutingTable*> table_{nullptr};
  /// Map-level grace-period clock: every operation pins a Guard while it
  /// may hold a routing-table snapshot (only when dynamic_), and
  /// PublishTable waits until all pre-swap pins release.
  mutable EpochManager table_epoch_;
  /// Serializes topology changes: controller actions and Debug* calls.
  std::mutex admin_mu_;
  MigrationHook migration_hook_;
  mutable std::mutex last_error_mu_;
  Status last_rebalance_error_;
  /// Declared last so it is destroyed FIRST: its destructor joins the
  /// controller thread before any state it steers goes away.
  std::unique_ptr<ShardRebalancer> rebalancer_;
};

}  // namespace obtree

#endif  // OBTREE_API_SHARDED_MAP_H_
