// Copyright 2026 The obtree Authors.

#include "obtree/workload/generator.h"

#include <cassert>
#include <cstdio>

namespace obtree {

WorkloadSpec WorkloadSpec::ReadMostly() {
  WorkloadSpec s;
  s.search_pct = 0.95;
  s.insert_pct = 0.025;
  s.delete_pct = 0.025;
  s.scan_pct = 0.0;
  s.name = "read-mostly(95/2.5/2.5)";
  return s;
}

WorkloadSpec WorkloadSpec::Mixed5050() {
  WorkloadSpec s;
  s.search_pct = 0.5;
  s.insert_pct = 0.25;
  s.delete_pct = 0.25;
  s.scan_pct = 0.0;
  s.name = "mixed(50/25/25)";
  return s;
}

WorkloadSpec WorkloadSpec::InsertOnly() {
  WorkloadSpec s;
  s.search_pct = 0.0;
  s.insert_pct = 1.0;
  s.delete_pct = 0.0;
  s.scan_pct = 0.0;
  s.preload = 0;
  s.name = "insert-only";
  return s;
}

WorkloadSpec WorkloadSpec::DeleteHeavy() {
  WorkloadSpec s;
  s.search_pct = 0.2;
  s.insert_pct = 0.2;
  s.delete_pct = 0.6;
  s.scan_pct = 0.0;
  s.name = "delete-heavy(20/20/60)";
  return s;
}

WorkloadSpec WorkloadSpec::ScanHeavy() {
  WorkloadSpec s;
  s.search_pct = 0.5;
  s.insert_pct = 0.1;
  s.delete_pct = 0.1;
  s.scan_pct = 0.3;
  s.name = "scan-heavy(50/10/10/30)";
  return s;
}

WorkloadSpec WorkloadSpec::ShardHotSpot(uint32_t num_shards) {
  WorkloadSpec s = Mixed5050();
  s.distribution = KeyDistribution::kHotSpot;
  s.hot_op_fraction = 0.9;
  s.hot_key_fraction = 1.0 / static_cast<double>(num_shards < 1 ? 1
                                                                : num_shards);
  s.name = "shard-hotspot(50/25/25,hot=1/" + std::to_string(num_shards) +
           ")";
  return s;
}

WorkloadSpec WorkloadSpec::MonotonicInsert() {
  WorkloadSpec s = InsertOnly();
  s.distribution = KeyDistribution::kMonotonic;
  s.name = "monotonic-insert";
  return s;
}

WorkloadSpec WorkloadSpec::MonotonicContended() {
  WorkloadSpec s = InsertOnly();
  s.distribution = KeyDistribution::kMonotonic;
  s.shared_seq = std::make_shared<std::atomic<uint64_t>>(1);
  s.name = "monotonic-contended";
  return s;
}

std::string WorkloadSpec::Describe() const {
  char buf[192];
  const char* dist = distribution == KeyDistribution::kUniform ? "uniform"
                     : distribution == KeyDistribution::kZipfian ? "zipf"
                     : distribution == KeyDistribution::kHotSpot ? "hotspot"
                     : distribution == KeyDistribution::kMonotonic
                         ? (shared_seq ? "monotonic-contended" : "monotonic")
                         : "sequential";
  std::snprintf(buf, sizeof(buf),
                "%s dist=%s keyspace=%llu preload=%llu",
                name.empty() ? "workload" : name.c_str(), dist,
                static_cast<unsigned long long>(key_space),
                static_cast<unsigned long long>(preload));
  return buf;
}

OpGenerator::OpGenerator(const WorkloadSpec& spec, uint64_t seed,
                         int thread_id, int num_threads)
    : spec_(spec),
      rng_(seed * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(thread_id)),
      seq_next_(spec.preload + 1 + static_cast<uint64_t>(thread_id)),
      seq_stride_(static_cast<uint64_t>(num_threads > 0 ? num_threads : 1)) {
  assert(spec.search_pct + spec.insert_pct + spec.delete_pct +
             spec.scan_pct >
         0.999);
  if (spec_.distribution == KeyDistribution::kZipfian) {
    zipf_ = std::make_unique<ZipfGenerator>(spec_.key_space,
                                            spec_.zipf_theta);
  }
}

Key OpGenerator::PreloadKey(uint64_t index, Key key_space) {
  // Scramble so the tree is loaded in pseudo-random order (sequential
  // loads produce atypically packed trees).
  return ScrambleKey(index) % key_space + 1;
}

Key OpGenerator::DrawKey() {
  switch (spec_.distribution) {
    case KeyDistribution::kUniform:
      return rng_.UniformRange(1, spec_.key_space);
    case KeyDistribution::kZipfian:
      // Scramble the rank so hot keys are spread across the tree rather
      // than packed into one leaf run (YCSB convention).
      return ScrambleKey(zipf_->Next(&rng_)) % spec_.key_space + 1;
    case KeyDistribution::kSequential: {
      const uint64_t i = seq_next_;
      seq_next_ += seq_stride_;
      return (i - 1) % kMaxUserKey + 1;
    }
    case KeyDistribution::kMonotonic: {
      if (spec_.shared_seq) {
        // One sequence interleaved by every thread: each key extends the
        // global max, so every insert aims at the rightmost leaf.
        const uint64_t n =
            spec_.shared_seq->fetch_add(1, std::memory_order_relaxed);
        return (spec_.preload + n - 1) % kMaxUserKey + 1;
      }
      const uint64_t i = seq_next_;
      seq_next_ += seq_stride_;
      return (i - 1) % kMaxUserKey + 1;
    }
    case KeyDistribution::kHotSpot: {
      Key hot_keys = static_cast<Key>(
          spec_.hot_key_fraction * static_cast<double>(spec_.key_space));
      if (hot_keys < 1) hot_keys = 1;
      if (hot_keys > spec_.key_space) hot_keys = spec_.key_space;
      return rng_.NextDouble() < spec_.hot_op_fraction
                 ? rng_.UniformRange(1, hot_keys)
                 : rng_.UniformRange(1, spec_.key_space);
    }
  }
  return 1;
}

OpGenerator::Op OpGenerator::Next() {
  const double p = rng_.NextDouble();
  OpType type;
  if (p < spec_.search_pct) {
    type = OpType::kSearch;
  } else if (p < spec_.search_pct + spec_.insert_pct) {
    type = OpType::kInsert;
  } else if (p < spec_.search_pct + spec_.insert_pct + spec_.delete_pct) {
    type = OpType::kDelete;
  } else {
    type = OpType::kScan;
  }
  return Op{type, DrawKey()};
}

}  // namespace obtree
