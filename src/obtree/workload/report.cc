// Copyright 2026 The obtree Authors.

#include "obtree/workload/report.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <iostream>

namespace obtree {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) os << " | ";
      os.width(static_cast<std::streamsize>(widths[c]));
      os << row[c];
    }
    os << "\n";
  };
  os << std::right;
  print_row(headers_);
  std::vector<std::string> rule;
  rule.reserve(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    rule.emplace_back(std::string(widths[c], '-'));
  }
  print_row(rule);
  for (const auto& row : rows_) print_row(row);
}

void Table::Print() const { Print(std::cout); }

std::string Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Fmt(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string FmtRatio(double a, double b, int precision) {
  if (b == 0) return "inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*fx", precision, a / b);
  return buf;
}

void PrintBanner(const std::string& experiment, const std::string& claim) {
  std::cout << "\n=== " << experiment << " ===\n"
            << "claim: " << claim << "\n\n";
}

}  // namespace obtree
