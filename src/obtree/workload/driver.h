// Copyright 2026 The obtree Authors.
//
// Multi-threaded workload driver, templated over the target
// implementation. Two duck-typed surfaces are accepted:
//
//   * trees (SagivTree and the three baselines):
//     Insert/Search/Delete/Scan/Size and a `stats()` StatsCollector;
//   * map front-ends (ShardedMap, ConcurrentMap) — the sharded-target
//     mode: same operations plus a `Stats()` aggregate snapshot instead
//     of a single collector.
//
// Used by the benchmark binaries and the examples.

#ifndef OBTREE_WORKLOAD_DRIVER_H_
#define OBTREE_WORKLOAD_DRIVER_H_

#include <chrono>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "obtree/api/batch.h"
#include "obtree/util/histogram.h"
#include "obtree/util/stats.h"
#include "obtree/util/status.h"
#include "obtree/workload/generator.h"

namespace obtree {

/// Counter access shim: prefers an aggregate `Stats()` (ShardedMap sums
/// its shards there) and falls back to the tree's `stats()` collector.
template <typename Tree, typename = void>
struct DriverStatsAccess {
  static StatsSnapshot Snapshot(const Tree* tree) {
    return tree->stats()->Snapshot();
  }
  static uint64_t MaxLocksHeld(const Tree* tree) {
    return tree->stats()->max_locks_held();
  }
};

template <typename Tree>
struct DriverStatsAccess<
    Tree, std::void_t<decltype(std::declval<const Tree&>().Stats())>> {
  static StatsSnapshot Snapshot(const Tree* tree) { return tree->Stats(); }
  static uint64_t MaxLocksHeld(const Tree* tree) {
    return tree->Stats().max_locks_held;
  }
};

/// Aggregate outcome of one driver run.
struct DriverResult {
  uint64_t total_ops = 0;
  uint64_t succeeded = 0;   ///< ops returning OK / value found
  double seconds = 0.0;
  int threads = 0;
  std::string label;        ///< workload name (spec.name), set by RunWorkload

  Histogram latency_ns;     ///< merged per-op latency (if collected)
  StatsSnapshot stats;      ///< tree counter deltas over the run

  double MopsPerSec() const {
    return seconds > 0
               ? static_cast<double>(total_ops) / seconds / 1e6
               : 0.0;
  }
  std::string Summary() const;
};

/// Insert `spec.preload` distinct keys (deterministic enumeration) using
/// `threads` workers. Values are key+1 so readers can verify.
template <typename Tree>
void PreloadTree(Tree* tree, const WorkloadSpec& spec, int threads = 4) {
  if (spec.preload == 0) return;
  std::vector<std::thread> workers;
  const uint64_t per = spec.preload / static_cast<uint64_t>(threads) + 1;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([tree, &spec, t, per]() {
      const uint64_t begin = static_cast<uint64_t>(t) * per;
      const uint64_t end = std::min(begin + per, spec.preload);
      for (uint64_t i = begin; i < end; ++i) {
        const Key k = OpGenerator::PreloadKey(i, spec.key_space);
        (void)tree->Insert(k, k + 1);  // duplicates possible; ignored
      }
    });
  }
  for (auto& w : workers) w.join();
}

/// Batch submission shim over the two Multi* surfaces:
///   * tree-style pointer APIs (SagivTree::MultiSearch/MultiInsert/
///     MultiDelete writing into caller arrays) — the default;
///   * map-style vector APIs (ConcurrentMap / ShardedMap MultiGet/
///     MultiInsert/MultiErase returning a BatchResult) — selected when
///     the target has MultiGet.
/// Each call returns how many ops in the batch succeeded (OK / found).
template <typename Tree, typename = void>
struct DriverBatchAccess {
  static uint64_t MultiSearch(Tree* tree, const std::vector<Key>& keys) {
    std::vector<Result<Value>> out(keys.size(),
                                   Result<Value>(Status::NotFound()));
    tree->MultiSearch(keys.data(), keys.size(), out.data(), nullptr);
    uint64_t ok = 0;
    for (const auto& r : out) ok += r.ok() ? 1 : 0;
    return ok;
  }
  static uint64_t MultiInsert(Tree* tree, const std::vector<Key>& keys,
                              const std::vector<Value>& values) {
    std::vector<Status> out(keys.size());
    tree->MultiInsert(keys.data(), values.data(), keys.size(), out.data(),
                      nullptr);
    uint64_t ok = 0;
    for (const Status& s : out) ok += s.ok() ? 1 : 0;
    return ok;
  }
  static uint64_t MultiDelete(Tree* tree, const std::vector<Key>& keys) {
    std::vector<Status> out(keys.size());
    tree->MultiDelete(keys.data(), keys.size(), out.data(), nullptr);
    uint64_t ok = 0;
    for (const Status& s : out) ok += s.ok() ? 1 : 0;
    return ok;
  }
};

template <typename Tree>
struct DriverBatchAccess<
    Tree, std::void_t<decltype(std::declval<Tree&>().MultiGet(
              std::declval<const std::vector<Key>&>()))>> {
  static uint64_t CountOk(const BatchResult& r) {
    uint64_t ok = 0;
    for (const auto& v : r.values) ok += v.ok() ? 1 : 0;
    for (const Status& s : r.statuses) ok += s.ok() ? 1 : 0;
    return ok;
  }
  static uint64_t MultiSearch(Tree* tree, const std::vector<Key>& keys) {
    return CountOk(tree->MultiGet(keys));
  }
  static uint64_t MultiInsert(Tree* tree, const std::vector<Key>& keys,
                              const std::vector<Value>& values) {
    return CountOk(tree->MultiInsert(keys, values));
  }
  static uint64_t MultiDelete(Tree* tree, const std::vector<Key>& keys) {
    return CountOk(tree->MultiErase(keys));
  }
};

/// Run `ops_per_thread` operations on each of `threads` workers drawing
/// from `spec`. When collect_latency is set, each op is timed into a
/// histogram (adds ~20ns/op of clock overhead).
template <typename Tree>
DriverResult RunWorkload(Tree* tree, const WorkloadSpec& spec, int threads,
                         uint64_t ops_per_thread, uint64_t seed = 1,
                         bool collect_latency = false) {
  using Clock = std::chrono::steady_clock;
  DriverResult result;
  result.threads = threads;
  result.label = spec.name;
  const StatsSnapshot before = DriverStatsAccess<Tree>::Snapshot(tree);

  std::vector<Histogram> histograms(static_cast<size_t>(threads));
  std::vector<uint64_t> succeeded(static_cast<size_t>(threads), 0);
  std::vector<std::thread> workers;
  const auto start = Clock::now();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      OpGenerator gen(spec, seed, t, threads);
      Histogram& hist = histograms[static_cast<size_t>(t)];
      uint64_t ok = 0;
      for (uint64_t i = 0; i < ops_per_thread; ++i) {
        const OpGenerator::Op op = gen.Next();
        const auto op_start =
            collect_latency ? Clock::now() : Clock::time_point();
        switch (op.type) {
          case OpType::kSearch:
            ok += tree->Search(op.key).ok() ? 1 : 0;
            break;
          case OpType::kInsert:
            ok += tree->Insert(op.key, op.key + 1).ok() ? 1 : 0;
            break;
          case OpType::kDelete:
            ok += tree->Delete(op.key).ok() ? 1 : 0;
            break;
          case OpType::kScan: {
            size_t left = spec.scan_length;
            tree->Scan(op.key, kMaxUserKey, [&left](Key, Value) {
              return --left > 0;
            });
            ++ok;
            break;
          }
        }
        if (collect_latency) {
          hist.Add(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  Clock::now() - op_start)
                  .count()));
        }
      }
      succeeded[static_cast<size_t>(t)] = ok;
    });
  }
  for (auto& w : workers) w.join();
  const auto end = Clock::now();

  result.total_ops = ops_per_thread * static_cast<uint64_t>(threads);
  result.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();
  for (int t = 0; t < threads; ++t) {
    result.latency_ns.Merge(histograms[static_cast<size_t>(t)]);
    result.succeeded += succeeded[static_cast<size_t>(t)];
  }
  result.stats = DriverStatsAccess<Tree>::Snapshot(tree).Delta(before);
  result.stats.max_locks_held = DriverStatsAccess<Tree>::MaxLocksHeld(tree);
  return result;
}

/// Batched-submission variant of RunWorkload: each worker accumulates up
/// to `batch` generated ops, then flushes them type-grouped through the
/// target's Multi* API (pipelined descents on a SagivTree-backed target).
/// Ops within a window may execute out of generation order — the batch
/// API's contract is per-op independence, so the workloads' random
/// streams are unaffected. Scans are executed inline (they have no
/// batched form). With batch <= 1 this degrades to per-op Multi* calls,
/// which the tree serves on its single-op path.
template <typename Tree>
DriverResult RunWorkloadBatched(Tree* tree, const WorkloadSpec& spec,
                                int threads, uint64_t ops_per_thread,
                                size_t batch, uint64_t seed = 1) {
  using Clock = std::chrono::steady_clock;
  DriverResult result;
  result.threads = threads;
  result.label = spec.name;
  const StatsSnapshot before = DriverStatsAccess<Tree>::Snapshot(tree);
  if (batch == 0) batch = 1;

  std::vector<uint64_t> succeeded(static_cast<size_t>(threads), 0);
  std::vector<std::thread> workers;
  const auto start = Clock::now();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t, batch]() {
      OpGenerator gen(spec, seed, t, threads);
      uint64_t ok = 0;
      std::vector<Key> get_keys;
      std::vector<Key> ins_keys;
      std::vector<Value> ins_vals;
      std::vector<Key> del_keys;
      get_keys.reserve(batch);
      ins_keys.reserve(batch);
      ins_vals.reserve(batch);
      del_keys.reserve(batch);
      auto flush = [&]() {
        if (!get_keys.empty()) {
          ok += DriverBatchAccess<Tree>::MultiSearch(tree, get_keys);
          get_keys.clear();
        }
        if (!ins_keys.empty()) {
          ok += DriverBatchAccess<Tree>::MultiInsert(tree, ins_keys, ins_vals);
          ins_keys.clear();
          ins_vals.clear();
        }
        if (!del_keys.empty()) {
          ok += DriverBatchAccess<Tree>::MultiDelete(tree, del_keys);
          del_keys.clear();
        }
      };
      for (uint64_t i = 0; i < ops_per_thread; ++i) {
        const OpGenerator::Op op = gen.Next();
        switch (op.type) {
          case OpType::kSearch:
            get_keys.push_back(op.key);
            break;
          case OpType::kInsert:
            ins_keys.push_back(op.key);
            ins_vals.push_back(op.key + 1);
            break;
          case OpType::kDelete:
            del_keys.push_back(op.key);
            break;
          case OpType::kScan: {
            size_t left = spec.scan_length;
            tree->Scan(op.key, kMaxUserKey, [&left](Key, Value) {
              return --left > 0;
            });
            ++ok;
            break;
          }
        }
        if (get_keys.size() + ins_keys.size() + del_keys.size() >= batch) {
          flush();
        }
      }
      flush();
      succeeded[static_cast<size_t>(t)] = ok;
    });
  }
  for (auto& w : workers) w.join();
  const auto end = Clock::now();

  result.total_ops = ops_per_thread * static_cast<uint64_t>(threads);
  result.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();
  for (int t = 0; t < threads; ++t) {
    result.succeeded += succeeded[static_cast<size_t>(t)];
  }
  result.stats = DriverStatsAccess<Tree>::Snapshot(tree).Delta(before);
  result.stats.max_locks_held = DriverStatsAccess<Tree>::MaxLocksHeld(tree);
  return result;
}

}  // namespace obtree

#endif  // OBTREE_WORKLOAD_DRIVER_H_
