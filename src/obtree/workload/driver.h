// Copyright 2026 The obtree Authors.
//
// Multi-threaded workload driver, templated over the target
// implementation. Two duck-typed surfaces are accepted:
//
//   * trees (SagivTree and the three baselines):
//     Insert/Search/Delete/Scan/Size and a `stats()` StatsCollector;
//   * map front-ends (ShardedMap, ConcurrentMap) — the sharded-target
//     mode: same operations plus a `Stats()` aggregate snapshot instead
//     of a single collector.
//
// Used by the benchmark binaries and the examples.

#ifndef OBTREE_WORKLOAD_DRIVER_H_
#define OBTREE_WORKLOAD_DRIVER_H_

#include <chrono>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "obtree/util/histogram.h"
#include "obtree/util/stats.h"
#include "obtree/workload/generator.h"

namespace obtree {

/// Counter access shim: prefers an aggregate `Stats()` (ShardedMap sums
/// its shards there) and falls back to the tree's `stats()` collector.
template <typename Tree, typename = void>
struct DriverStatsAccess {
  static StatsSnapshot Snapshot(const Tree* tree) {
    return tree->stats()->Snapshot();
  }
  static uint64_t MaxLocksHeld(const Tree* tree) {
    return tree->stats()->max_locks_held();
  }
};

template <typename Tree>
struct DriverStatsAccess<
    Tree, std::void_t<decltype(std::declval<const Tree&>().Stats())>> {
  static StatsSnapshot Snapshot(const Tree* tree) { return tree->Stats(); }
  static uint64_t MaxLocksHeld(const Tree* tree) {
    return tree->Stats().max_locks_held;
  }
};

/// Aggregate outcome of one driver run.
struct DriverResult {
  uint64_t total_ops = 0;
  uint64_t succeeded = 0;   ///< ops returning OK / value found
  double seconds = 0.0;
  int threads = 0;
  std::string label;        ///< workload name (spec.name), set by RunWorkload

  Histogram latency_ns;     ///< merged per-op latency (if collected)
  StatsSnapshot stats;      ///< tree counter deltas over the run

  double MopsPerSec() const {
    return seconds > 0
               ? static_cast<double>(total_ops) / seconds / 1e6
               : 0.0;
  }
  std::string Summary() const;
};

/// Insert `spec.preload` distinct keys (deterministic enumeration) using
/// `threads` workers. Values are key+1 so readers can verify.
template <typename Tree>
void PreloadTree(Tree* tree, const WorkloadSpec& spec, int threads = 4) {
  if (spec.preload == 0) return;
  std::vector<std::thread> workers;
  const uint64_t per = spec.preload / static_cast<uint64_t>(threads) + 1;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([tree, &spec, t, per]() {
      const uint64_t begin = static_cast<uint64_t>(t) * per;
      const uint64_t end = std::min(begin + per, spec.preload);
      for (uint64_t i = begin; i < end; ++i) {
        const Key k = OpGenerator::PreloadKey(i, spec.key_space);
        (void)tree->Insert(k, k + 1);  // duplicates possible; ignored
      }
    });
  }
  for (auto& w : workers) w.join();
}

/// Run `ops_per_thread` operations on each of `threads` workers drawing
/// from `spec`. When collect_latency is set, each op is timed into a
/// histogram (adds ~20ns/op of clock overhead).
template <typename Tree>
DriverResult RunWorkload(Tree* tree, const WorkloadSpec& spec, int threads,
                         uint64_t ops_per_thread, uint64_t seed = 1,
                         bool collect_latency = false) {
  using Clock = std::chrono::steady_clock;
  DriverResult result;
  result.threads = threads;
  result.label = spec.name;
  const StatsSnapshot before = DriverStatsAccess<Tree>::Snapshot(tree);

  std::vector<Histogram> histograms(static_cast<size_t>(threads));
  std::vector<uint64_t> succeeded(static_cast<size_t>(threads), 0);
  std::vector<std::thread> workers;
  const auto start = Clock::now();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      OpGenerator gen(spec, seed, t, threads);
      Histogram& hist = histograms[static_cast<size_t>(t)];
      uint64_t ok = 0;
      for (uint64_t i = 0; i < ops_per_thread; ++i) {
        const OpGenerator::Op op = gen.Next();
        const auto op_start =
            collect_latency ? Clock::now() : Clock::time_point();
        switch (op.type) {
          case OpType::kSearch:
            ok += tree->Search(op.key).ok() ? 1 : 0;
            break;
          case OpType::kInsert:
            ok += tree->Insert(op.key, op.key + 1).ok() ? 1 : 0;
            break;
          case OpType::kDelete:
            ok += tree->Delete(op.key).ok() ? 1 : 0;
            break;
          case OpType::kScan: {
            size_t left = spec.scan_length;
            tree->Scan(op.key, kMaxUserKey, [&left](Key, Value) {
              return --left > 0;
            });
            ++ok;
            break;
          }
        }
        if (collect_latency) {
          hist.Add(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  Clock::now() - op_start)
                  .count()));
        }
      }
      succeeded[static_cast<size_t>(t)] = ok;
    });
  }
  for (auto& w : workers) w.join();
  const auto end = Clock::now();

  result.total_ops = ops_per_thread * static_cast<uint64_t>(threads);
  result.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();
  for (int t = 0; t < threads; ++t) {
    result.latency_ns.Merge(histograms[static_cast<size_t>(t)]);
    result.succeeded += succeeded[static_cast<size_t>(t)];
  }
  result.stats = DriverStatsAccess<Tree>::Snapshot(tree).Delta(before);
  result.stats.max_locks_held = DriverStatsAccess<Tree>::MaxLocksHeld(tree);
  return result;
}

}  // namespace obtree

#endif  // OBTREE_WORKLOAD_DRIVER_H_
