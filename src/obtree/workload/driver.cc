// Copyright 2026 The obtree Authors.

#include "obtree/workload/driver.h"

#include <cstdio>

namespace obtree {

std::string DriverResult::Summary() const {
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "%s%sthreads=%d ops=%llu ok=%llu %.3fs %.2f Mops/s",
                label.c_str(), label.empty() ? "" : " ", threads,
                static_cast<unsigned long long>(total_ops),
                static_cast<unsigned long long>(succeeded), seconds,
                MopsPerSec());
  return buf;
}

}  // namespace obtree
