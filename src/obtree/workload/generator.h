// Copyright 2026 The obtree Authors.
//
// Workload specification and per-thread operation generators for the
// benchmark harness: operation mixes (search/insert/delete/scan) over
// uniform, Zipfian, or sequential key streams.

#ifndef OBTREE_WORKLOAD_GENERATOR_H_
#define OBTREE_WORKLOAD_GENERATOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "obtree/util/common.h"
#include "obtree/util/random.h"

namespace obtree {

/// A single logical operation drawn from a workload.
enum class OpType { kSearch, kInsert, kDelete, kScan };

/// Key-stream shapes.
enum class KeyDistribution {
  kUniform,     ///< uniform over [1, key_space]
  kZipfian,     ///< Zipf-skewed ranks scrambled over the key space
  kSequential,  ///< monotonically increasing (append workloads)
  kMonotonic,   ///< the time-series / auto-increment-ID pattern: keys form
                ///< one globally increasing sequence. With shared_seq set
                ///< (the MonotonicContended preset) every thread draws the
                ///< next key from ONE shared atomic counter, so N threads
                ///< interleave a single sequence and convoy on the
                ///< rightmost leaf — the append-path adversary; without
                ///< it, threads stride disjoint arithmetic subsequences
                ///< (like kSequential) that are still globally ascending
                ///< in aggregate
  kHotSpot,     ///< hot_op_fraction of ops hit the range
                ///< [1, hot_key_fraction * key_space]; the rest are
                ///< uniform. With hot_key_fraction = 1/num_shards this is
                ///< the shard-hot-spot adversary for ShardedMap: the hot
                ///< range is exactly one shard's partition.
};

/// Declarative description of a workload phase.
struct WorkloadSpec {
  double search_pct = 0.95;
  double insert_pct = 0.025;
  double delete_pct = 0.025;
  double scan_pct = 0.0;

  Key key_space = 1'000'000;        ///< keys drawn from [1, key_space]
  uint64_t preload = 500'000;       ///< keys inserted before measuring
  KeyDistribution distribution = KeyDistribution::kUniform;
  double zipf_theta = 0.99;
  size_t scan_length = 100;         ///< pairs visited per kScan op

  /// kHotSpot tunables: fraction of operations aimed at the hot range and
  /// the hot range's size as a fraction of the key space.
  double hot_op_fraction = 0.9;
  double hot_key_fraction = 0.125;

  /// Canned mixes used across the experiment suite.
  static WorkloadSpec ReadMostly();   // 95/2.5/2.5
  static WorkloadSpec Mixed5050();    // 50 search / 25 insert / 25 delete
  static WorkloadSpec InsertOnly();
  static WorkloadSpec DeleteHeavy();  // 20 search / 20 insert / 60 delete
  static WorkloadSpec ScanHeavy();    // 50 search / 30 scan / 10 / 10

  /// Mixed5050 aimed at one shard of `num_shards`: 90% of ops land on the
  /// first 1/num_shards of the key space (the worst case for range
  /// partitioning — one shard serves almost all traffic).
  static WorkloadSpec ShardHotSpot(uint32_t num_shards);

  /// Insert-only over kMonotonic with per-thread strided subsequences:
  /// the reproducible time-series ingest pattern.
  static WorkloadSpec MonotonicInsert();

  /// Insert-only over kMonotonic where every thread interleaves ONE
  /// shared atomic sequence (a fresh counter per factory call): N threads
  /// all extend the tree's max together, the worst case for the rightmost
  /// leaf. Reusing the same spec object across runs continues the
  /// sequence; call the factory again for a fresh one.
  static WorkloadSpec MonotonicContended();

  /// kMonotonic only: when set, DrawKey fetches the next sequence index
  /// from this counter (shared by every generator copied from the spec)
  /// instead of the per-thread stride. Keys are preload + index.
  std::shared_ptr<std::atomic<uint64_t>> shared_seq;

  std::string name;  ///< label used in reports

  std::string Describe() const;
};

/// Draws operations for one worker thread. Deterministic given (spec,
/// seed, thread_id); sequential streams are strided so threads never
/// collide on inserts.
class OpGenerator {
 public:
  struct Op {
    OpType type;
    Key key;
  };

  OpGenerator(const WorkloadSpec& spec, uint64_t seed, int thread_id,
              int num_threads);

  Op Next();

  /// The key a preload pass should insert for index i (deterministic,
  /// collision-free enumeration of [1, key_space]).
  static Key PreloadKey(uint64_t index, Key key_space);

 private:
  Key DrawKey();

  WorkloadSpec spec_;
  Random rng_;
  std::unique_ptr<ZipfGenerator> zipf_;
  uint64_t seq_next_;
  uint64_t seq_stride_;
};

}  // namespace obtree

#endif  // OBTREE_WORKLOAD_GENERATOR_H_
