// Copyright 2026 The obtree Authors.
//
// Fixed-width table rendering for the experiment binaries, so every bench
// prints paper-style rows that EXPERIMENTS.md can quote directly.

#ifndef OBTREE_WORKLOAD_REPORT_H_
#define OBTREE_WORKLOAD_REPORT_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace obtree {

/// Accumulates rows and prints them with aligned columns.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Add one row; must have as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Render with column separators, e.g.
  ///   threads | sagiv Mops | ly Mops
  ///   ------- | ---------- | -------
  ///         1 |       4.20 |    3.90
  void Print(std::ostream& os) const;

  /// Convenience: render to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Number formatting helpers.
std::string Fmt(double v, int precision = 2);
std::string Fmt(uint64_t v);
std::string FmtRatio(double a, double b, int precision = 2);  // "a/b x"

/// Print an experiment banner:
///   === E2: throughput scaling (claim: ...) ===
void PrintBanner(const std::string& experiment, const std::string& claim);

}  // namespace obtree

#endif  // OBTREE_WORKLOAD_REPORT_H_
